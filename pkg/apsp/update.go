package apsp

import (
	"fmt"
	"io"

	"congestapsp/internal/core"
	"congestapsp/internal/graphio"
)

// UpdateOp selects what an EdgeUpdate does to the Runner's graph.
type UpdateOp int

const (
	// SetWeight changes the weight of the first existing U-V edge (either
	// orientation on undirected graphs). Weight-only updates keep the
	// communication topology, so they are the cheap case: the next Run
	// re-computes only the per-source work the change can have affected.
	SetWeight UpdateOp = iota
	// InsertEdge adds a new U->V edge of weight W. Topology changes rebuild
	// the warm network's adjacency in place but force the next Run to
	// recompute from scratch (UpdateStats.FellBack).
	InsertEdge
	// DeleteEdge removes the first existing U-V edge; same fallback as
	// InsertEdge.
	DeleteEdge
)

// String names the operation as it appears in update streams and errors.
func (op UpdateOp) String() string { return core.UpdateOp(op).String() }

// EdgeUpdate is one graph mutation: the edge identified by its endpoints,
// and for SetWeight/InsertEdge the new weight (W is ignored for DeleteEdge).
type EdgeUpdate struct {
	Op   UpdateOp
	U, V int
	W    int64
}

// UpdateStats reports, after a batch of updates, how much of the warm
// session's computed state survives for the next Run. The session tracks
// 2n + |Q| per-source label systems; Recomputed counts the systems the
// accumulated damage forces the next run to re-execute, Reused the rest.
// FellBack means the next run recomputes everything: the topology changed,
// no result snapshot was armed (no full-APSP run since the last update),
// or the damage was broad enough that the incremental path would not pay
// off.
type UpdateStats struct {
	Reused     int
	Recomputed int
	FellBack   bool
}

// ApplyUpdates applies the batch to the Runner's graph, in order, patching
// the warm network in place and arming the next Run to reflect the mutated
// graph. It is the Runner's sanctioned mutation path — the inversion of
// the old "the graph must not change" rule.
//
// The next Run after ApplyUpdates is bit-identical in results (Dist,
// LastHop), round count, |Q| and h to a cold run on the mutated graph.
// When it can reuse snapshot state it skips simulating work whose outcome
// is provably unchanged, so message/word counters may legitimately be
// lower than a cold run's; runs after that are plain warm runs and match
// cold runs exactly, counters included.
//
// On error the batch stops at the failing update; earlier updates remain
// applied, the Runner stays consistent with the partially-mutated graph,
// and the returned UpdateStats describes that state. Updates that set a
// weight to its current value are accepted and ignored.
// ReadUpdates parses a newline-delimited update stream (the `apsp -update`
// file format): one update per line — `w u v weight` sets a weight,
// `a u v weight` inserts an edge, `d u v` deletes one — with '#'-prefixed
// comments and blank lines ignored. Errors carry 1-based line numbers.
func ReadUpdates(r io.Reader) ([]EdgeUpdate, error) {
	raw, err := graphio.ReadUpdates(r)
	if err != nil {
		return nil, err
	}
	ups := make([]EdgeUpdate, len(raw))
	for i, u := range raw {
		op := SetWeight
		switch u.Kind {
		case graphio.UpdateInsert:
			op = InsertEdge
		case graphio.UpdateDelete:
			op = DeleteEdge
		}
		ups[i] = EdgeUpdate{Op: op, U: u.U, V: u.V, W: u.W}
	}
	return ups, nil
}

// ApplyUpdate mutates g directly with exactly the edge addressing of
// Runner.ApplyUpdates — SetWeight and DeleteEdge act on the first existing
// U-V edge (either orientation on undirected graphs), InsertEdge appends,
// and setting a weight to its current value is accepted and ignored — but
// without any session: no damage tracking, no warm network, just the graph
// content. It exists for replay tooling (the serving layer's journal
// recovery) that reconstructs a graph from a recorded update stream before
// building a Runner on the result; applying the same updates here and
// through a Runner lands on the same Digest. A graph pinned to a live
// Runner must NOT be mutated this way — that is exactly the out-of-band
// mutation the Runner's version guard refuses.
func (g *Graph) ApplyUpdate(up EdgeUpdate) error {
	switch up.Op {
	case SetWeight:
		idx := g.g.FindEdge(up.U, up.V)
		if idx < 0 {
			return fmt.Errorf("apsp: no edge (%d,%d) to set", up.U, up.V)
		}
		if g.g.Edges()[idx].W == up.W {
			return nil
		}
		return g.g.SetEdgeWeight(idx, up.W)
	case InsertEdge:
		return g.g.AddEdge(up.U, up.V, up.W)
	case DeleteEdge:
		idx := g.g.FindEdge(up.U, up.V)
		if idx < 0 {
			return fmt.Errorf("apsp: no edge (%d,%d) to delete", up.U, up.V)
		}
		return g.g.RemoveEdge(idx)
	}
	return fmt.Errorf("apsp: unknown update op %d", int(up.Op))
}

func (r *Runner) ApplyUpdates(ups []EdgeUpdate) (UpdateStats, error) {
	cups := make([]core.EdgeUpdate, len(ups))
	for i, u := range ups {
		cups[i] = core.EdgeUpdate{Op: core.UpdateOp(u.Op), U: u.U, V: u.V, W: u.W}
	}
	st, err := r.s.ApplyUpdates(cups)
	out := UpdateStats{Reused: st.Reused, Recomputed: st.Recomputed, FellBack: st.FellBack}
	if err != nil {
		return out, translateErr(err)
	}
	return out, nil
}
