package apsp

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// cancelAfterRounds returns Options whose OnRound hook cancels the run
// after k simulated rounds — a way to cancel deterministically mid-stage
// from the public surface, with no fault injector.
func cancelAfterRounds(opt Options, k int, cancel context.CancelFunc) Options {
	var fired atomic.Bool
	opt.OnRound = func(round, delivered int) {
		if round >= k && !fired.Swap(true) {
			cancel()
		}
	}
	return opt
}

// TestRunContextCancelMidStageRunnerReusable is the public session-reuse
// contract under cancellation, for all 4 profiles in both exec modes: a run
// canceled mid-stage returns an *InterruptError matching both ErrCanceled
// and context.Canceled with the interrupted stage and progress, and the
// SAME Runner's next clean run is bit-identical to a cold run.
func TestRunContextCancelMidStageRunnerReusable(t *testing.T) {
	forceWorkers(t)
	g := RandomGraph(GenOptions{N: 28, Seed: 9, MaxWeight: 20}, 4*28)
	algos := []Algorithm{
		Deterministic43, Deterministic32, Randomized43, BroadcastStep6,
	}
	for _, algo := range algos {
		for _, parallel := range []bool{false, true} {
			opt := Options{Algorithm: algo, Parallel: parallel, Seed: 5}
			cold, err := Run(g, opt)
			if err != nil {
				t.Fatalf("%v parallel=%v: cold run: %v", algo, parallel, err)
			}
			r, err := NewRunner(g)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			_, err = r.RunContext(ctx, cancelAfterRounds(opt, 3, cancel))
			cancel()
			if err == nil {
				t.Fatalf("%v parallel=%v: canceled run succeeded", algo, parallel)
			}
			if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
				t.Fatalf("%v parallel=%v: error matches neither sentinel: %v", algo, parallel, err)
			}
			var ie *InterruptError
			if !errors.As(err, &ie) {
				t.Fatalf("%v parallel=%v: got %T, want *InterruptError", algo, parallel, err)
			}
			if ie.Stage == "" {
				t.Fatalf("%v parallel=%v: InterruptError without a stage tag: %+v", algo, parallel, ie)
			}
			if errors.Is(err, ErrDeadlineExceeded) {
				t.Fatalf("%v parallel=%v: canceled run matches ErrDeadlineExceeded", algo, parallel)
			}
			// The same Runner, clean: bit-identical to cold on distances,
			// last hops, and every deterministic stat.
			warm, err := r.Run(opt)
			if err != nil {
				t.Fatalf("%v parallel=%v: clean run after cancel: %v", algo, parallel, err)
			}
			if !reflect.DeepEqual(warm.Dist, cold.Dist) || !reflect.DeepEqual(warm.LastHop, cold.LastHop) {
				t.Fatalf("%v parallel=%v: post-cancel results diverge from cold run", algo, parallel)
			}
			if got, want := stripHostCost(warm.Stats), stripHostCost(cold.Stats); !reflect.DeepEqual(got, want) {
				t.Fatalf("%v parallel=%v: post-cancel stats diverge\n  got:  %+v\n  want: %+v", algo, parallel, got, want)
			}
		}
	}
}

// TestRunContextDeadline pins the deadline path end to end: an
// already-expired deadline fails with ErrDeadlineExceeded before any round
// executes, and the Runner stays usable.
func TestRunContextDeadline(t *testing.T) {
	g := RandomGraph(GenOptions{N: 16, Seed: 2, MaxWeight: 9}, 48)
	r, err := NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err = r.RunContext(ctx, Options{})
	if !errors.Is(err, ErrDeadlineExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline returned %v", err)
	}
	var ie *InterruptError
	if !errors.As(err, &ie) || ie.CompletedRounds != 0 {
		t.Fatalf("want *InterruptError with 0 completed rounds, got %v", err)
	}
	if _, err := r.Run(Options{}); err != nil {
		t.Fatalf("Runner unusable after deadline: %v", err)
	}
}

// TestRunManyContextStopsBatch: one context governs the whole batch, and a
// cancellation mid-batch stops it with the typed error.
func TestRunManyContextStopsBatch(t *testing.T) {
	g := RandomGraph(GenOptions{N: 16, Seed: 3, MaxWeight: 9}, 48)
	r, err := NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	batch := []Options{
		{}, // runs to completion
		cancelAfterRounds(Options{Algorithm: Deterministic32}, 2, cancel),
		{Algorithm: Randomized43}, // never reached
	}
	res, err := r.RunManyContext(ctx, batch)
	cancel()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled batch returned %v", err)
	}
	if res != nil {
		t.Fatal("failed batch returned partial results")
	}
	out, err := r.RunMany([]Options{{}, {Algorithm: Deterministic32}})
	if err != nil || len(out) != 2 {
		t.Fatalf("Runner unusable after canceled batch: %v", err)
	}
}

// TestBlockerSetContextCanceled: the blocker-only path observes its context
// too, surfacing the apsp sentinel, and the Runner stays usable.
func TestBlockerSetContextCanceled(t *testing.T) {
	g := RandomGraph(GenOptions{N: 24, Seed: 4, MaxWeight: 9}, 72)
	r, err := NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := r.BlockerSetContext(ctx, BlockerOptions{}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled BlockerSetContext returned %v", err)
	}
	q, _, err := r.BlockerSet(BlockerOptions{})
	if err != nil || len(q) == 0 {
		t.Fatalf("Runner unusable after canceled blocker construction: q=%v err=%v", q, err)
	}
}

// TestRetrySequentialPublicOption: the public opt-in reaches the dispatcher
// (a smoke test — the recovery semantics are pinned in internal/congest and
// the fault matrix; here we only prove the option is plumbed and harmless
// on a healthy run).
func TestRetrySequentialPublicOption(t *testing.T) {
	forceWorkers(t)
	g := RandomGraph(GenOptions{N: 20, Seed: 6, MaxWeight: 9}, 60)
	plain, err := Run(g, Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	retry, err := Run(g, Options{Parallel: true, RetrySequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Dist, retry.Dist) {
		t.Fatal("RetrySequential changed a healthy run's results")
	}
	if got, want := stripHostCost(retry.Stats), stripHostCost(plain.Stats); !reflect.DeepEqual(got, want) {
		t.Fatalf("RetrySequential changed a healthy run's stats\n  got:  %+v\n  want: %+v", got, want)
	}
}
