package apsp

import (
	"reflect"
	"runtime"
	"strings"
	"testing"
)

func runnerTestGraph(n int) *Graph {
	return RandomGraph(GenOptions{N: n, Directed: true, Seed: int64(n) + 7, MaxWeight: 30}, 4*n)
}

// forceWorkers raises GOMAXPROCS to at least 4 for the duration of a test:
// warm sessions toggle Parallel between runs on one engine, and that
// transition is only real when the worker pool genuinely grows (the
// growing-shards engine bug was invisible on 1-core CI exactly because
// ShardRuns and the round loop both collapse to one worker there).
func forceWorkers(t *testing.T) {
	t.Helper()
	prev := runtime.GOMAXPROCS(0)
	if prev >= 4 {
		return
	}
	runtime.GOMAXPROCS(4)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// stripHostCost zeroes the host-side stage observations (wall-clock,
// allocations) so two Stats can be compared bit-for-bit on everything
// deterministic, including the per-stage round decomposition.
func stripHostCost(s Stats) Stats {
	stages := make([]StageTiming, len(s.Stages))
	for i, st := range s.Stages {
		st.WallMS, st.Allocs = 0, 0
		stages[i] = st
	}
	s.Stages = stages
	return s
}

// TestRunnerMatchesColdRun is the warm-session correctness property: for
// every algorithm profile, a Run on a warm Runner (second and third use of
// the same session, after other variants ran on it) must be bit-identical
// to a cold apsp.Run — distances, last hops, and every deterministic stat
// including per-stage rounds.
func TestRunnerMatchesColdRun(t *testing.T) {
	forceWorkers(t)
	g := runnerTestGraph(40)
	r, err := NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	if r.Graph() != g {
		t.Fatal("Graph() identity")
	}
	for _, alg := range []Algorithm{Deterministic43, Deterministic32, Randomized43, BroadcastStep6} {
		for _, parallel := range []bool{false, true} {
			opt := Options{Algorithm: alg, Seed: 3, Parallel: parallel}
			warm, err := r.Run(opt)
			if err != nil {
				t.Fatalf("%v warm: %v", alg, err)
			}
			cold, err := Run(g, opt)
			if err != nil {
				t.Fatalf("%v cold: %v", alg, err)
			}
			if !reflect.DeepEqual(cold.Dist, warm.Dist) {
				t.Fatalf("%v parallel=%v: warm distances diverge from cold", alg, parallel)
			}
			if !reflect.DeepEqual(cold.LastHop, warm.LastHop) {
				t.Fatalf("%v parallel=%v: warm last hops diverge from cold", alg, parallel)
			}
			if !reflect.DeepEqual(stripHostCost(cold.Stats), stripHostCost(warm.Stats)) {
				t.Fatalf("%v parallel=%v: warm stats diverge:\n  cold: %+v\n  warm: %+v",
					alg, parallel, stripHostCost(cold.Stats), stripHostCost(warm.Stats))
			}
		}
	}
}

// TestRunnerResultsOutliveLaterRuns pins the caller-owned-result contract:
// a Result captured from a Runner must not change when later runs reuse
// the session's warm state.
func TestRunnerResultsOutliveLaterRuns(t *testing.T) {
	forceWorkers(t)
	g := runnerTestGraph(32)
	r, err := NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	first, err := r.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	snapshot := make([]int64, len(first.Dist[0]))
	copy(snapshot, first.Dist[0])
	if _, err := r.Run(Options{Algorithm: Deterministic32}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(Options{Parallel: true}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Dist[0], snapshot) {
		t.Fatal("earlier Result mutated by later runs on the same Runner")
	}
}

// TestRunnerRunMany: the batch entry point runs every option set in order
// and returns matching results.
func TestRunnerRunMany(t *testing.T) {
	forceWorkers(t)
	g := runnerTestGraph(24)
	r, err := NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	opts := []Options{
		{},
		{Algorithm: Deterministic32},
		{Parallel: true},
		{Sources: []int{0, 5}},
	}
	results, err := r.RunMany(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(opts) {
		t.Fatalf("got %d results, want %d", len(results), len(opts))
	}
	for i, opt := range opts {
		cold, err := Run(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cold.Dist, results[i].Dist) {
			t.Fatalf("RunMany[%d] distances diverge from cold run", i)
		}
	}
}

// TestRunnerBlockerSetWarm: BlockerSet on a session that already ran full
// pipelines must match the one-shot construction.
func TestRunnerBlockerSetWarm(t *testing.T) {
	forceWorkers(t)
	g := runnerTestGraph(30)
	r, err := NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(Options{}); err != nil {
		t.Fatal(err)
	}
	warmQ, warmStats, err := r.BlockerSet(BlockerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	coldQ, coldStats, err := BlockerSet(g, BlockerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coldQ, warmQ) || !reflect.DeepEqual(coldStats, warmStats) {
		t.Fatalf("warm blocker set diverges: %v/%+v vs %v/%+v", warmQ, warmStats, coldQ, coldStats)
	}
}

// TestRunnerRejectsMutatedGraph: the topology is frozen at NewRunner; an
// edge added afterwards must fail the next Run instead of silently using
// the stale network.
func TestRunnerRejectsMutatedGraph(t *testing.T) {
	g := runnerTestGraph(16)
	r, err := NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(Options{}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 9, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(Options{}); err == nil || !strings.Contains(err.Error(), "modified") {
		t.Fatalf("mutated graph accepted (err = %v)", err)
	}
}

// TestRunnerStagesExposed: per-stage timings reach the public Stats with
// the full stage list, in execution order, and their rounds sum to the
// total (step5-closure is local, so its rounds are zero).
func TestRunnerStagesExposed(t *testing.T) {
	g := runnerTestGraph(24)
	r, err := NewRunner(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"step1-csssp", "step2-blocker", "step3-insssp", "step4-bcast",
		"step5-closure", "step6-qsink", "step7-extend", "step8-lastedge"}
	if len(res.Stats.Stages) != len(want) {
		t.Fatalf("got %d stages, want %d", len(res.Stats.Stages), len(want))
	}
	sum := 0
	for i, st := range res.Stats.Stages {
		if st.Name != want[i] {
			t.Fatalf("stage %d = %q, want %q", i, st.Name, want[i])
		}
		sum += st.Rounds
	}
	if sum != res.Stats.Rounds {
		t.Fatalf("stage rounds sum to %d, total is %d", sum, res.Stats.Rounds)
	}
	skip, err := r.Run(Options{SkipLastHops: true})
	if err != nil {
		t.Fatal(err)
	}
	last := skip.Stats.Stages[len(skip.Stats.Stages)-1]
	if last.Name != "step7-extend" {
		t.Fatalf("skipped stage still present: last stage is %q", last.Name)
	}
}
