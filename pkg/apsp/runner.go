package apsp

import (
	"context"

	"congestapsp/internal/blocker"
	"congestapsp/internal/congest"
	"congestapsp/internal/core"
)

// Runner is a warm APSP session pinned to one graph. The CONGEST network
// (CSR adjacency) is built once by NewRunner, and everything that grows
// while running — engine arenas, pooled protocol scratch, the worker-clone
// fleet of the parallel execution layer — is kept warm across calls, so
// repeated runs with different algorithms, sources, bandwidths or
// execution modes skip the per-call cold start that apsp.Run pays every
// time. This is the intended surface for serving repeated traffic against
// one graph: build a Runner per graph, then call Run / RunMany /
// BlockerSet as often as needed.
//
//	r, err := apsp.NewRunner(g)                                       // builds the network
//	det, err := r.Run(apsp.Options{})                                 // first run grows the arenas
//	base, err := r.Run(apsp.Options{Algorithm: apsp.Deterministic32}) // warm re-run
//
// Results are bit-identical to one-shot apsp.Run calls with the same
// options, and caller-owned: a Result stays valid after later runs on the
// same Runner.
//
// A Runner supports one call at a time (build one Runner per goroutine, or
// guard it with a mutex). The graph may be mutated ONLY through
// ApplyUpdates, the Runner's first-class update path: it patches the warm
// network in place and arms the next Run to re-compute incrementally,
// re-running only the per-source work a change can possibly have affected.
// Mutating the graph any other way makes the next call fail loudly (an
// O(1) version check; `-tags matcheck` builds additionally re-verify the
// graph content digest each run).
type Runner struct {
	g *Graph
	s *core.Session
}

// NewRunner builds a warm session for g. The graph may be used by many
// runners, but each Runner assumes all mutations route through its own
// ApplyUpdates (a graph updated through one Runner invalidates any other
// Runner pinned to it).
func NewRunner(g *Graph) (*Runner, error) {
	s, err := core.NewSession(g.g)
	if err != nil {
		return nil, err
	}
	return &Runner{g: g, s: s}, nil
}

// Graph returns the graph the Runner is pinned to.
func (r *Runner) Graph() *Graph { return r.g }

// ArenaFootprint returns the high-water byte footprint of the runner's warm
// simulation arenas (the session network's scratch slabs plus its worker
// fleet's). Grow-only, hence monotone; serving pools use it for
// approximate per-entry byte accounting.
func (r *Runner) ArenaFootprint() int64 { return r.s.ArenaFootprint() }

// SetFaultInjector arms (or, with nil, disarms) a deterministic fault
// injector on the Runner's warm session — a test instrument (see
// internal/faultinject) the serving layer threads through its pool so
// fault-matrix suites can exercise the daemon path. The hook persists
// across calls until replaced.
func (r *Runner) SetFaultInjector(fi congest.FaultInjector) { r.s.SetFaultInjector(fi) }

// Run computes APSP on the Runner's graph with the given options, reusing
// the warm network and worker fleet.
func (r *Runner) Run(opt Options) (*Result, error) {
	return r.RunContext(context.Background(), opt)
}

// RunContext is Run under a context: the run observes ctx.Done() at round
// granularity and at every pipeline stage boundary — within two simulated
// rounds or one stage boundary of the context firing, it stops and returns
// an *InterruptError matching ErrCanceled or ErrDeadlineExceeded (and the
// context's own sentinel) that carries the interrupted stage, the completed
// round count, and per-stage timings for the work finished. The Runner
// remains reusable after an interrupted run: the next call starts clean and
// is bit-identical to a cold run. A context that can never be canceled
// (context.Background, context.TODO) arms nothing and adds no per-round
// cost.
func (r *Runner) RunContext(ctx context.Context, opt Options) (*Result, error) {
	res, err := r.s.RunContext(ctx, coreOptions(opt))
	if err != nil {
		return nil, translateErr(err)
	}
	return fromCore(res), nil
}

// RunMany executes one Run per options entry, in order, on the warm
// session, and returns the results in the same order. It stops at the
// first error. The batch form exists for sweep-shaped callers (profile x
// execution-mode grids over one graph) so they state the whole batch in
// one call.
func (r *Runner) RunMany(opts []Options) ([]*Result, error) {
	return r.RunManyContext(context.Background(), opts)
}

// RunManyContext is RunMany under one context governing the whole batch: a
// deadline spans every entry, and cancellation stops the batch at the next
// round or stage boundary of whichever run is executing. Completed entries
// are not returned once an error stops the batch (the error's
// *InterruptError payload identifies how far the failing run got).
func (r *Runner) RunManyContext(ctx context.Context, opts []Options) ([]*Result, error) {
	out := make([]*Result, len(opts))
	for i, opt := range opts {
		res, err := r.RunContext(ctx, opt)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

// BlockerSet computes an h-hop blocker set of the Runner's graph on the
// warm session (the session form of apsp.BlockerSet).
func (r *Runner) BlockerSet(opt BlockerOptions) ([]int, BlockerStats, error) {
	return r.BlockerSetContext(context.Background(), opt)
}

// BlockerSetContext is BlockerSet under a context, observed at round
// granularity; an interrupted construction returns an error matching
// ErrCanceled/ErrDeadlineExceeded, and the Runner remains reusable.
func (r *Runner) BlockerSetContext(ctx context.Context, opt BlockerOptions) ([]int, BlockerStats, error) {
	q, stats, err := r.s.BlockerOnlyContext(ctx, core.BlockerOptions{
		H:        opt.HopParam,
		Mode:     blocker.Mode(opt.Mode),
		Seed:     opt.Seed,
		Parallel: opt.Parallel,
	})
	if err != nil {
		return nil, BlockerStats{}, translateErr(err)
	}
	return q, blockerStats(q, stats), nil
}
