package apsp

import "congestapsp/internal/graph"

// GenOptions parameterizes the workload generators. All generators are
// deterministic in Seed and always produce a connected communication
// network (a CONGEST requirement).
type GenOptions struct {
	N         int
	Directed  bool
	Seed      int64
	MaxWeight int64 // edge weights drawn uniformly from [0, MaxWeight]; 0 means unit weights
}

func (o GenOptions) cfg() graph.GenConfig {
	return graph.GenConfig{N: o.N, Directed: o.Directed, Seed: o.Seed, MaxWeight: o.MaxWeight}
}

// RandomGraph generates a connected random graph with about m edges.
func RandomGraph(o GenOptions, m int) *Graph {
	return &Graph{g: graph.RandomConnected(o.cfg(), m)}
}

// RingGraph generates a weighted cycle (diameter n/2 — the hop-bound
// stress workload).
func RingGraph(o GenOptions) *Graph {
	return &Graph{g: graph.Ring(o.cfg())}
}

// GridGraph generates a rows x cols grid (road-network-style workload);
// o.N is ignored.
func GridGraph(rows, cols int, o GenOptions) *Graph {
	return &Graph{g: graph.Grid(rows, cols, o.cfg())}
}

// LayeredGraph generates a deep layered DAG-with-spine (maximizes the
// full-length h-hop paths that blocker sets must cover); o.N is ignored.
func LayeredGraph(layers, width int, o GenOptions) *Graph {
	return &Graph{g: graph.Layered(layers, width, o.cfg())}
}

// StarGraph generates a hub-and-spoke graph (maximizes relay congestion,
// stressing the bottleneck-node machinery).
func StarGraph(o GenOptions) *Graph {
	return &Graph{g: graph.Star(o.cfg())}
}

// ZeroWeightGraph generates a connected random graph in which about half
// the edges have weight zero.
func ZeroWeightGraph(o GenOptions, m int) *Graph {
	return &Graph{g: graph.ZeroWeightMix(o.cfg(), m)}
}

// PowerLawGraph generates a Barabási–Albert preferential-attachment graph
// with `attach` edges per new vertex: a heavy-tailed degree sequence whose
// hubs stress the bottleneck-elimination machinery on realistic topologies.
func PowerLawGraph(o GenOptions, attach int) *Graph {
	return &Graph{g: graph.PowerLaw(o.cfg(), attach)}
}

// GeometricGraph generates a random geometric graph: points in the unit
// square joined within `radius`, weights proportional to Euclidean distance
// (road-like). radius <= 0 selects the connectivity-threshold radius.
func GeometricGraph(o GenOptions, radius float64) *Graph {
	return &Graph{g: graph.RandomGeometric(o.cfg(), radius)}
}

// ExpanderGraph generates the union of `cycles` random Hamiltonian cycles:
// a sparse low-diameter expander (shallow broadcast trees, small blocker
// sets).
func ExpanderGraph(o GenOptions, cycles int) *Graph {
	return &Graph{g: graph.Expander(o.cfg(), cycles)}
}

// KTreeGraph generates a k-tree, the maximal graphs of treewidth k: a
// bounded-separator family that is the structured counterpoint to the
// expander workload.
func KTreeGraph(o GenOptions, k int) *Graph {
	return &Graph{g: graph.KTree(o.cfg(), k)}
}
