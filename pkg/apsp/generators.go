package apsp

import "congestapsp/internal/graph"

// GenOptions parameterizes the workload generators. All generators are
// deterministic in Seed and always produce a connected communication
// network (a CONGEST requirement).
type GenOptions struct {
	N         int
	Directed  bool
	Seed      int64
	MaxWeight int64 // edge weights drawn uniformly from [0, MaxWeight]; 0 means unit weights
}

func (o GenOptions) cfg() graph.GenConfig {
	return graph.GenConfig{N: o.N, Directed: o.Directed, Seed: o.Seed, MaxWeight: o.MaxWeight}
}

// RandomGraph generates a connected random graph with about m edges.
func RandomGraph(o GenOptions, m int) *Graph {
	return &Graph{g: graph.RandomConnected(o.cfg(), m)}
}

// RingGraph generates a weighted cycle (diameter n/2 — the hop-bound
// stress workload).
func RingGraph(o GenOptions) *Graph {
	return &Graph{g: graph.Ring(o.cfg())}
}

// GridGraph generates a rows x cols grid (road-network-style workload);
// o.N is ignored.
func GridGraph(rows, cols int, o GenOptions) *Graph {
	return &Graph{g: graph.Grid(rows, cols, o.cfg())}
}

// LayeredGraph generates a deep layered DAG-with-spine (maximizes the
// full-length h-hop paths that blocker sets must cover); o.N is ignored.
func LayeredGraph(layers, width int, o GenOptions) *Graph {
	return &Graph{g: graph.Layered(layers, width, o.cfg())}
}

// StarGraph generates a hub-and-spoke graph (maximizes relay congestion,
// stressing the bottleneck-node machinery).
func StarGraph(o GenOptions) *Graph {
	return &Graph{g: graph.Star(o.cfg())}
}

// ZeroWeightGraph generates a connected random graph in which about half
// the edges have weight zero.
func ZeroWeightGraph(o GenOptions, m int) *Graph {
	return &Graph{g: graph.ZeroWeightMix(o.cfg(), m)}
}
