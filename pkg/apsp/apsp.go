// Package apsp is the public interface of the CONGEST APSP library: a
// faithful implementation of "Faster Deterministic All Pairs Shortest Paths
// in Congest Model" (Agarwal & Ramachandran, SPAA 2020) on a
// round-synchronous CONGEST simulator, together with the baselines the
// paper compares against.
//
// Quick start:
//
//	g := apsp.NewGraph(4, false)
//	g.AddEdge(0, 1, 3)
//	g.AddEdge(1, 2, 1)
//	g.AddEdge(2, 3, 2)
//	res, err := apsp.Run(g, apsp.Options{})
//	// res.Dist[0][3] == 6, res.Stats.Rounds == CONGEST round count
//
// The default algorithm is the paper's deterministic O~(n^(4/3))-round
// pipeline (Theorem 1.1). Alternative profiles reproduce Table 1 of the
// paper: the deterministic O~(n^(3/2)) baseline of Agarwal et al. PODC'18,
// a randomized-sampling O~(n^(4/3)) profile, and an ablation that replaces
// the pipelined Step 6 with the trivial O~(n^(5/3)) broadcast.
package apsp

import (
	"fmt"

	"congestapsp/internal/blocker"
	"congestapsp/internal/core"
	"congestapsp/internal/graph"
)

// Inf is the distance reported for unreachable pairs.
const Inf = graph.Inf

// Graph is a weighted graph with vertices 0..N-1. Edge weights are
// non-negative integers; zero weights are fully supported. For directed
// graphs the CONGEST communication network is the underlying undirected
// graph, exactly as in the paper.
type Graph struct {
	g *graph.Graph
}

// NewGraph returns an empty graph with n vertices.
func NewGraph(n int, directed bool) *Graph {
	return &Graph{g: graph.New(n, directed)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.g.N }

// M returns the number of edges.
func (g *Graph) M() int { return g.g.M() }

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.g.Directed }

// AddEdge adds an edge u->v (or {u,v} if undirected) with weight w >= 0.
func (g *Graph) AddEdge(u, v int, w int64) error { return g.g.AddEdge(u, v, w) }

// Edges calls f(u, v, w) for every edge.
func (g *Graph) Edges(f func(u, v int, w int64)) {
	for _, e := range g.g.Edges() {
		f(e.U, e.V, e.W)
	}
}

// Digest returns the graph's content digest: a 64-bit SplitMix64 sum over
// the node count, directedness, and positioned edge list. Two graphs share
// a digest exactly when they are content-identical, and a Runner's
// ApplyUpdates maintains the same digest incrementally — this is the
// identity warm-Runner caches (the serving pool) key by.
func (g *Graph) Digest() uint64 { return core.GraphDigest(g.g) }

// Algorithm selects the APSP profile.
type Algorithm int

const (
	// Deterministic43 is the paper's O~(n^(4/3))-round deterministic
	// algorithm (default).
	Deterministic43 Algorithm = iota
	// Deterministic32 is the O~(n^(3/2)) deterministic baseline [2].
	Deterministic32
	// Randomized43 is the randomized-sampling O~(n^(4/3)) profile [13, 1].
	Randomized43
	// BroadcastStep6 is Deterministic43 with Step 6 replaced by the
	// trivial O~(n^(5/3)) broadcast (ablation of Section 4).
	BroadcastStep6
)

func (a Algorithm) String() string {
	switch a {
	case Deterministic43:
		return "deterministic-n43"
	case Deterministic32:
		return "deterministic-n32"
	case Randomized43:
		return "randomized-n43"
	case BroadcastStep6:
		return "broadcast-step6"
	}
	return fmt.Sprintf("algorithm(%d)", int(a))
}

// ParseAlgorithm maps a profile name to its Algorithm. It accepts both
// the short CLI spellings (det43, det32, rand43, bcast6) and the long
// String() forms, so flags and recorded artifacts round-trip.
func ParseAlgorithm(name string) (Algorithm, error) {
	switch name {
	case "det43", "deterministic-n43":
		return Deterministic43, nil
	case "det32", "deterministic-n32":
		return Deterministic32, nil
	case "rand43", "randomized-n43":
		return Randomized43, nil
	case "bcast6", "broadcast-step6":
		return BroadcastStep6, nil
	}
	return 0, fmt.Errorf("apsp: unknown algorithm %q (want det43|det32|rand43|bcast6)", name)
}

// Options configures a run. The zero value selects the paper's algorithm
// with its default parameters.
type Options struct {
	Algorithm Algorithm
	// HopParam overrides the hop parameter h (0 = the profile default:
	// ceil(n^(1/3)), or ceil(sqrt(n)) for Deterministic32).
	HopParam int
	// Bandwidth is the number of words per link per direction per round
	// (default 1, the classic CONGEST budget).
	Bandwidth int
	// Parallel executes node steps on a worker pool; results are
	// bit-identical to sequential execution.
	Parallel bool
	// Planner enables the adaptive per-stage execution planner: each
	// pipeline stage picks sequential or sharded execution from a
	// deterministic cost model seeded by the stage's captured round and
	// sub-run counts (overriding Parallel stage by stage). The first run of
	// a configuration on a cold Runner calibrates all-sequentially; on
	// single-core hosts every plan degenerates to all-seq. The decision
	// trace is recorded per stage in Stats.Stages[i].Exec. Results are
	// bit-identical regardless of plan.
	Planner bool
	// MemoryBudget, when > 0, bounds the resident bytes of the result
	// matrices: a run whose flat Dist(+LastHop) footprint exceeds it stores
	// them in the tiled spillable backend and returns a Result with nil
	// Dist/LastHop slices — read through DistAt/LastHopAt (or CopyDistRow)
	// and call Release when done. 0 (default) keeps flat in-memory
	// matrices. Budgeted runs are never snapshot-eligible, so ApplyUpdates
	// after one recomputes cold. Partial runs (Sources) always stay flat.
	MemoryBudget int64
	// SpillDir is where budgeted runs place spill files ("" = os.TempDir()).
	SpillDir string
	// RetrySequential opts into graceful degradation under Parallel: a
	// worker sub-run that panics is re-executed sequentially on a fresh
	// clone after the fleet drains, and a fully-recovered run's results and
	// stats are bit-identical to an undisturbed one. Cancellation and
	// ordinary errors are never retried; a panic that recurs on retry
	// surfaces as *PanicError.
	RetrySequential bool
	// Seed drives the randomized profiles.
	Seed int64
	// SkipLastHops disables the final last-edge resolution pass.
	SkipLastHops bool
	// OnRound, when set, is invoked after every simulated CONGEST round
	// with the cumulative round index and the number of messages delivered
	// that round (tracing/profiling hook).
	OnRound func(round, delivered int)
	// Sources, when non-nil, restricts the output to shortest paths FROM
	// these sources (partial APSP): Dist rows for other vertices are nil,
	// and last-hop resolution is skipped (LastHop is nil). Out-of-range
	// sources are an error; duplicates are dropped. See also
	// RunFromSources for a compact result shape.
	Sources []int
}

// StepRounds breaks the round count down by Algorithm 1 step.
type StepRounds = core.StepRounds

// StageTiming is the per-stage cost record of the staged pipeline
// executor: the stage name, the simulated rounds it charged
// (deterministic), and the host wall-clock and heap allocations it
// consumed.
type StageTiming = core.StageTiming

// Stats reports the distributed cost of a run.
type Stats struct {
	N, M, H           int
	BlockerSetSize    int
	Rounds            int
	Messages          int64
	Words             int64
	MaxNodeCongestion int64
	Steps             StepRounds
	// Stages is the executed pipeline stages in order, each with its
	// charged rounds, wall-clock and allocations (skipped stages absent).
	Stages []StageTiming
	// BottleneckCount and QPrimeSize expose the Section-4 machinery
	// (0 for the broadcast profiles).
	BottleneckCount int
	QPrimeSize      int
	PipelineRounds  int
}

// Result holds the APSP output.
type Result struct {
	// Dist[x][t] is the exact shortest-path distance from x to t (Inf if
	// unreachable). Nil on a budgeted (tiled) run — use DistAt/CopyDistRow.
	Dist [][]int64
	// LastHop[x][t] is the predecessor of t on a shortest x->t path (-1
	// on the diagonal, for unreachable pairs, or with SkipLastHops). Nil on
	// a budgeted run — use LastHopAt.
	LastHop [][]int
	Stats   Stats

	// res is the underlying core result; budgeted runs answer DistAt /
	// LastHopAt / CopyDistRow through its tiled matrices.
	res *core.Result
}

// Budgeted reports whether the result's matrices live in the tiled
// spillable backend (Options.MemoryBudget engaged): Dist/LastHop are nil
// and the accessor methods are the only read path.
func (r *Result) Budgeted() bool { return r.Dist == nil && r.res != nil && r.res.DistM != nil }

// DistAt returns the exact x->t distance regardless of backend.
func (r *Result) DistAt(x, t int) int64 {
	if r.Dist != nil {
		return r.Dist[x][t]
	}
	return r.res.DistM.At(x, t)
}

// LastHopAt returns the x->t predecessor regardless of backend (-1 when
// last-hop resolution was skipped).
func (r *Result) LastHopAt(x, t int) int {
	if r.LastHop != nil {
		return r.LastHop[x][t]
	}
	if r.res != nil {
		return r.res.LastHopAt(x, t)
	}
	return -1
}

// CopyDistRow copies row x of the distance matrix into dst (length n).
func (r *Result) CopyDistRow(dst []int64, x int) {
	if r.Dist != nil {
		copy(dst, r.Dist[x])
		return
	}
	r.res.DistM.CopyRow(dst, x)
}

// Release frees the spill files a budgeted result holds; no-op for
// in-memory results. The result's matrices must not be read afterward.
func (r *Result) Release() error {
	if r.res == nil {
		return nil
	}
	return r.res.Release()
}

// Run computes exact all-pairs shortest paths on g with the selected
// profile, returning the distances and the CONGEST cost accounting. Each
// call builds (and discards) a fresh simulation network; callers that run
// the same graph repeatedly should hold a Runner instead.
func Run(g *Graph, opt Options) (*Result, error) {
	res, err := core.Run(g.g, coreOptions(opt))
	if err != nil {
		return nil, translateErr(err)
	}
	return fromCore(res), nil
}

// coreOptions maps the public options onto the core pipeline's.
func coreOptions(opt Options) core.Options {
	v := core.Det43
	switch opt.Algorithm {
	case Deterministic32:
		v = core.Det32
	case Randomized43:
		v = core.Rand43
	case BroadcastStep6:
		v = core.BroadcastStep6
	}
	return core.Options{
		Variant:         v,
		H:               opt.HopParam,
		Bandwidth:       opt.Bandwidth,
		Parallel:        opt.Parallel,
		Planner:         opt.Planner,
		MemoryBudget:    opt.MemoryBudget,
		SpillDir:        opt.SpillDir,
		RetrySequential: opt.RetrySequential,
		Seed:            opt.Seed,
		SkipLastEdges:   opt.SkipLastHops,
		OnRound:         opt.OnRound,
		Sources:         opt.Sources,
	}
}

// fromCore maps a core result onto the public shape (shared by Run and
// Runner.Run so the two surfaces can never drift).
func fromCore(res *core.Result) *Result {
	return &Result{
		Dist:    res.Dist,
		LastHop: res.LastHop,
		res:     res,
		Stats: Stats{
			N: res.Stats.N, M: res.Stats.M, H: res.Stats.H,
			BlockerSetSize:    res.Stats.QSize,
			Rounds:            res.Stats.Rounds,
			Messages:          res.Stats.Messages,
			Words:             res.Stats.Words,
			MaxNodeCongestion: res.Stats.MaxNodeCongestion,
			Steps:             res.Stats.Steps,
			Stages:            res.Stages,
			BottleneckCount:   res.Stats.QSink.BottleneckCount,
			QPrimeSize:        res.Stats.QSink.QPrimeSize,
			PipelineRounds:    res.Stats.QSink.PipelineRounds,
		},
	}
}

// Path reconstructs a shortest x->t path from a Result computed with last
// hops. It returns nil when t is unreachable from x, when x or t is out of
// range, or when the result carries no data for x (partial-APSP runs with
// Options.Sources leave Dist/LastHop rows nil for non-sources).
func (r *Result) Path(x, t int) []int {
	n := r.Stats.N
	if x < 0 || x >= n || t < 0 || t >= n {
		return nil
	}
	if r.Dist != nil {
		// Flat backend: partial-APSP runs leave non-source rows nil.
		if r.LastHop == nil || r.Dist[x] == nil || r.LastHop[x] == nil {
			return nil
		}
	} else if !r.Budgeted() || r.res.LastHopM == nil {
		return nil
	}
	if r.DistAt(x, t) >= Inf {
		return nil
	}
	var rev []int
	for cur := t; cur != x; {
		rev = append(rev, cur)
		cur = r.LastHopAt(x, cur)
		if cur < 0 || len(rev) > n {
			return nil // defensive: broken predecessor chain
		}
	}
	rev = append(rev, x)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// BlockerMode selects the blocker-set construction for BlockerSet.
type BlockerMode int

const (
	// BlockerDeterministic is the paper's Algorithm 2' (derandomized set
	// cover, O~(|S|h) rounds).
	BlockerDeterministic BlockerMode = iota
	// BlockerRandomized is Algorithm 2 with pairwise-independent sampling.
	BlockerRandomized
	// BlockerGreedy is the PODC'18 greedy baseline.
	BlockerGreedy
	// BlockerSampled is classic random sampling with patch-up.
	BlockerSampled
)

// BlockerStats summarizes a blocker-set construction.
type BlockerStats struct {
	Size           int
	Rounds         int
	SelectionSteps int
	GoodSets       int
	Fallbacks      int
}

// BlockerOptions configures BlockerSet. The zero value selects the paper's
// deterministic construction (Algorithm 2') with hop parameter
// ceil(n^(1/3)).
type BlockerOptions struct {
	// HopParam is the hop parameter h (0 = ceil(n^(1/3))).
	HopParam int
	// Mode selects the construction algorithm.
	Mode BlockerMode
	// Seed drives the randomized modes.
	Seed int64
	// Parallel runs the underlying per-source SSSPs source-sharded across
	// a worker pool; the set, stats and charged rounds are bit-identical
	// to the sequential schedule.
	Parallel bool
}

// BlockerSet computes an h-hop blocker set of g directly (a building block
// exposed for experimentation): a vertex set hitting every h-hop shortest
// path of the h-hop consistent SSSP collection of all sources.
func BlockerSet(g *Graph, opt BlockerOptions) ([]int, BlockerStats, error) {
	q, stats, err := core.BlockerOnly(g.g, core.BlockerOptions{
		H:        opt.HopParam,
		Mode:     blocker.Mode(opt.Mode),
		Seed:     opt.Seed,
		Parallel: opt.Parallel,
	})
	if err != nil {
		return nil, BlockerStats{}, translateErr(err)
	}
	return q, blockerStats(q, stats), nil
}

// blockerStats maps the internal blocker stats onto the public shape
// (shared by BlockerSet and Runner.BlockerSet).
func blockerStats(q []int, stats blocker.Stats) BlockerStats {
	return BlockerStats{
		Size:           len(q),
		Rounds:         stats.Rounds,
		SelectionSteps: stats.SelectionSteps,
		GoodSets:       stats.GoodSetSelections,
		Fallbacks:      stats.FallbackSteps,
	}
}
