package apsp

import (
	"congestapsp/internal/congest"
	"congestapsp/internal/core"
	"congestapsp/internal/unweighted"
)

// RoutingResult extends the APSP output with forwarding tables: NextHop
// gives, at every node x, the first hop of a shortest path toward every
// target — the classic routing-table use of distributed APSP.
//
// Distributed semantics: NextHop[x][t] is knowledge held at node x (it is
// obtained from the last-edge resolution of a run on the reversed graph,
// where "predecessor of x on the shortest t->x path" is exactly the
// successor of x on the shortest x->t path, and is resolved at x).
type RoutingResult struct {
	// Dist[x][t] is the exact shortest-path distance (Inf if unreachable).
	Dist [][]int64
	// NextHop[x][t] is x's forwarding neighbor toward t (-1 on the
	// diagonal and for unreachable pairs).
	NextHop [][]int
	// Stats aggregates both underlying runs (forward + reverse).
	Stats Stats
}

// RunWithRouting computes APSP plus per-node forwarding tables. It runs the
// selected algorithm twice — once on g and once on the reversed graph —
// so it costs about twice the rounds of Run.
func RunWithRouting(g *Graph, opt Options) (*RoutingResult, error) {
	fwd, err := Run(g, opt)
	if err != nil {
		return nil, err
	}
	revOpts := opt
	revOpts.SkipLastHops = false // the reverse run's last hops ARE the next hops
	rg := &Graph{g: g.g.Reverse()}
	rev, err := Run(rg, revOpts)
	if err != nil {
		return nil, err
	}
	n := g.N()
	next := make([][]int, n)
	for x := 0; x < n; x++ {
		next[x] = make([]int, n)
		for t := 0; t < n; t++ {
			next[x][t] = rev.LastHop[t][x]
		}
	}
	st := fwd.Stats
	st.Rounds += rev.Stats.Rounds
	st.Messages += rev.Stats.Messages
	st.Words += rev.Stats.Words
	return &RoutingResult{Dist: fwd.Dist, NextHop: next, Stats: st}, nil
}

// Route walks the forwarding tables from x to t and returns the node
// sequence (nil if unreachable).
func (r *RoutingResult) Route(x, t int) []int {
	if r.Dist[x][t] >= Inf {
		return nil
	}
	path := []int{x}
	for cur := x; cur != t; {
		nxt := r.NextHop[cur][t]
		if nxt < 0 || len(path) > len(r.Dist) {
			return nil // defensive: broken table
		}
		path = append(path, nxt)
		cur = nxt
	}
	return path
}

// HopResult is the output of the unweighted (hop-count) APSP baseline.
type HopResult struct {
	// Hops[src][v] is the minimum edge count of a src->v path (Inf if
	// unreachable).
	Hops   [][]int64
	Rounds int
}

// RunUnweighted computes hop-count APSP with the classic O(n)-round
// pipelined-BFS algorithm (Holzer-Wattenhofer), the unweighted regime whose
// Omega(n) lower bound Table 1 of the paper cites. Weights on g are
// ignored.
func RunUnweighted(g *Graph) (*HopResult, error) {
	nw, err := congest.NewNetwork(g.g, 1)
	if err != nil {
		return nil, err
	}
	res, err := unweighted.Run(nw, g.g)
	if err != nil {
		return nil, err
	}
	return &HopResult{Hops: res.Dist, Rounds: res.Rounds}, nil
}

// SourcesResult is the output of RunFromSources: distances from a subset
// of sources to every node.
type SourcesResult struct {
	// Dist[i][t] is the exact distance from Sources[i] to t.
	Dist    [][]int64
	Sources []int
	Stats   Stats
}

// RunFromSources computes exact shortest paths from the given source
// subset to every node (partial APSP). Steps 1-6 of the pipeline are
// unchanged — the blocker machinery needs the full tree collection either
// way — but the per-source extension step runs only for the requested
// sources, saving (n - |sources|) * h rounds. Last-hop resolution is
// skipped in this mode.
func RunFromSources(g *Graph, sources []int, opt Options) (*SourcesResult, error) {
	v := core.Det43
	switch opt.Algorithm {
	case Deterministic32:
		v = core.Det32
	case Randomized43:
		v = core.Rand43
	case BroadcastStep6:
		v = core.BroadcastStep6
	}
	res, err := core.Run(g.g, core.Options{
		Variant:   v,
		H:         opt.HopParam,
		Bandwidth: opt.Bandwidth,
		Parallel:  opt.Parallel,
		Seed:      opt.Seed,
		Sources:   sources,
		OnRound:   opt.OnRound,
	})
	if err != nil {
		return nil, err
	}
	out := &SourcesResult{Sources: append([]int(nil), sources...)}
	for _, x := range sources {
		out.Dist = append(out.Dist, res.Dist[x])
	}
	out.Stats = Stats{
		N: res.Stats.N, M: res.Stats.M, H: res.Stats.H,
		BlockerSetSize: res.Stats.QSize,
		Rounds:         res.Stats.Rounds,
		Messages:       res.Stats.Messages,
		Words:          res.Stats.Words,
		Steps:          res.Stats.Steps,
	}
	return out, nil
}
