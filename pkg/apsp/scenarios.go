package apsp

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
)

// A Scenario is one named, reproducible workload: a generator family
// instantiated at a size and seed. Its Name — e.g. "powerlaw-n512-s7" — is
// the stable identifier used by cmd/experiment, benchmark artifacts, and
// issue reports, so a number in EXPERIMENTS.json can always be regenerated
// bit-identically from its scenario name alone.
type Scenario struct {
	// Family is a registered generator family (see Families).
	Family string
	// N is the requested vertex count. Shape-constrained families (grid,
	// layered) round it to the nearest feasible shape; Build's result is
	// authoritative.
	N int
	// Seed drives the family's deterministic generator.
	Seed int64
}

// scenarioMaxWeight is the corpus-wide weight cap: every scenario draws
// integer weights in [0/1, 50] so round counts are comparable across
// families.
const scenarioMaxWeight = 50

// familySpec describes one registered generator family.
type familySpec struct {
	desc  string
	build func(o GenOptions) *Graph
}

// families is the scenario registry. All corpus graphs are undirected
// (the CONGEST communication topology) with weights in [0/1, 50].
var families = map[string]familySpec{
	"random": {
		desc:  "connected uniform random graph, m = 4n",
		build: func(o GenOptions) *Graph { return RandomGraph(o, 4*o.N) },
	},
	"ring": {
		desc:  "weighted cycle (diameter n/2, hop-bound stress)",
		build: func(o GenOptions) *Graph { return RingGraph(o) },
	},
	"grid": {
		desc:  "near-square grid (road-style mesh; n rounded to rows*cols)",
		build: func(o GenOptions) *Graph { r, c := gridShape(o.N); return GridGraph(r, c, o) },
	},
	"layered": {
		desc:  "deep layered graph, width 8 (max full-length h-hop paths)",
		build: func(o GenOptions) *Graph { l, w := layeredShape(o.N); return LayeredGraph(l, w, o) },
	},
	"star": {
		desc:  "hub-and-spoke (max relay congestion)",
		build: func(o GenOptions) *Graph { return StarGraph(o) },
	},
	"zeromix": {
		desc:  "random graph with ~half zero-weight edges, m = 4n",
		build: func(o GenOptions) *Graph { return ZeroWeightGraph(o, 4*o.N) },
	},
	"powerlaw": {
		desc:  "Barabási–Albert preferential attachment, 3 edges/vertex",
		build: func(o GenOptions) *Graph { return PowerLawGraph(o, 3) },
	},
	"geometric": {
		desc:  "random geometric graph at the connectivity-threshold radius (road-like)",
		build: func(o GenOptions) *Graph { return GeometricGraph(o, 0) },
	},
	"expander": {
		desc:  "union of 3 random Hamiltonian cycles (6-regular expander)",
		build: func(o GenOptions) *Graph { return ExpanderGraph(o, 3) },
	},
	"ktree": {
		desc:  "4-tree (treewidth 4, bounded separators)",
		build: func(o GenOptions) *Graph { return KTreeGraph(o, 4) },
	},
}

// gridShape rounds n to the nearest rows x cols factorization with rows =
// floor(sqrt(n)).
func gridShape(n int) (rows, cols int) {
	rows = int(math.Sqrt(float64(n)))
	if rows < 2 {
		rows = 2
	}
	cols = (n + rows - 1) / rows
	if cols < 2 {
		cols = 2
	}
	return rows, cols
}

// layeredShape rounds n to layers x width with width 8 (or smaller for
// tiny n).
func layeredShape(n int) (layers, width int) {
	width = 8
	for width > 2 && n/width < 2 {
		width /= 2
	}
	layers = n / width
	if layers < 2 {
		layers = 2
	}
	return layers, width
}

// Families returns the registered scenario family names, sorted.
func Families() []string {
	out := make([]string, 0, len(families))
	for name := range families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// FamilyDescription returns a one-line description of a registered family
// ("" for unknown families).
func FamilyDescription(family string) string {
	return families[family].desc
}

// Name returns the scenario's stable identifier, "<family>-n<N>-s<Seed>".
func (s Scenario) Name() string {
	return fmt.Sprintf("%s-n%d-s%d", s.Family, s.N, s.Seed)
}

// scenarioNameRE admits exactly the strings Scenario.Name can produce:
// canonical decimal numbers only (no leading zeros, no "-0"), so every
// accepted name round-trips bit-identically through ParseScenario → Name.
var scenarioNameRE = regexp.MustCompile(`^([a-z][a-z0-9]*)-n([1-9][0-9]*)-s(0|-[1-9][0-9]*|[1-9][0-9]*)$`)

// ParseScenario parses a scenario name produced by Scenario.Name. The
// family must be registered.
func ParseScenario(name string) (Scenario, error) {
	m := scenarioNameRE.FindStringSubmatch(name)
	if m == nil {
		return Scenario{}, fmt.Errorf("apsp: scenario name %q does not match <family>-n<N>-s<seed>", name)
	}
	if _, ok := families[m[1]]; !ok {
		return Scenario{}, fmt.Errorf("apsp: unknown scenario family %q (have %v)", m[1], Families())
	}
	n, err := strconv.Atoi(m[2])
	if err != nil || n < 2 {
		return Scenario{}, fmt.Errorf("apsp: bad scenario size in %q", name)
	}
	seed, err := strconv.ParseInt(m[3], 10, 64)
	if err != nil {
		return Scenario{}, fmt.Errorf("apsp: bad scenario seed in %q", name)
	}
	return Scenario{Family: m[1], N: n, Seed: seed}, nil
}

// Build generates the scenario's graph. Identical scenarios build
// identical graphs (same vertex count, edge order, and weights) on every
// host and Go version that shares math/rand's generator.
func (s Scenario) Build() (*Graph, error) {
	spec, ok := families[s.Family]
	if !ok {
		return nil, fmt.Errorf("apsp: unknown scenario family %q (have %v)", s.Family, Families())
	}
	if s.N < 2 {
		return nil, fmt.Errorf("apsp: scenario %s: need n >= 2", s.Name())
	}
	return spec.build(GenOptions{N: s.N, Seed: s.Seed, MaxWeight: scenarioMaxWeight}), nil
}
